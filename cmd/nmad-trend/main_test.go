package main

import (
	"strings"
	"testing"

	"nmad"

	"nmad/internal/bench"
)

func fig(id string, pts map[int]float64) nmad.BenchFigure {
	s := bench.Series{Label: "replay[aggreg]"}
	for x, y := range pts {
		s.Points = append(s.Points, bench.Point{X: x, Y: y})
	}
	return nmad.BenchFigure{ID: id, Series: []bench.Series{s}}
}

func TestCompareLowerIsBetterDefault(t *testing.T) {
	old := []nmad.BenchFigure{fig("incast", map[int]float64{8: 100})}
	grew := []nmad.BenchFigure{fig("incast", map[int]float64{8: 150})}
	shrank := []nmad.BenchFigure{fig("incast", map[int]float64{8: 50})}

	regs, _, _, compared := compare(old, grew, 1.2, figureRules)
	if compared != 1 || len(regs) != 1 {
		t.Fatalf("growth past threshold: compared=%d regressions=%v", compared, regs)
	}
	if regs, _, _, _ := compare(old, shrank, 1.2, figureRules); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareHigherIsBetterInvertsDirection(t *testing.T) {
	// engine-speed is declared higher-is-better with a 2.0 band: a rise
	// must pass, a collapse must fail.
	old := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 40000})}
	rose := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 90000})}
	fell := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 15000})}
	zero := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 0})}

	if regs, _, _, _ := compare(old, rose, 1.2, figureRules); len(regs) != 0 {
		t.Fatalf("ops/sec rise flagged as regression: %v", regs)
	}
	regs, figLines, _, _ := compare(old, fell, 1.2, figureRules)
	if len(regs) != 1 {
		t.Fatalf("ops/sec collapse not flagged: %v", regs)
	}
	if !strings.Contains(regs[0], "higher is better") {
		t.Errorf("regression line does not name the direction: %s", regs[0])
	}
	if len(figLines) != 1 || !strings.Contains(figLines[0], "higher is better") {
		t.Errorf("summary line does not name the direction: %v", figLines)
	}
	if regs, _, _, _ := compare(old, zero, 1.2, figureRules); len(regs) != 1 {
		t.Fatalf("collapse to zero not flagged: %v", regs)
	}
}

func TestCompareWithinBandPasses(t *testing.T) {
	// A drop within engine-speed's loose 2.0 band is noise, not a
	// regression.
	old := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 40000})}
	dip := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 25000})}
	if regs, _, _, _ := compare(old, dip, 1.2, figureRules); len(regs) != 0 {
		t.Fatalf("within-band dip flagged: %v", regs)
	}
}

func TestCompareOverrideKeepsDirection(t *testing.T) {
	// A -fig-threshold override tightens the ratio but must not flip the
	// figure back to lower-is-better.
	rules := map[string]figRule{
		"engine-speed": {Threshold: 1.1, HigherIsBetter: true},
	}
	old := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 40000})}
	dip := []nmad.BenchFigure{fig("engine-speed", map[int]float64{1024: 35000})}
	if regs, _, _, _ := compare(old, dip, 1.2, rules); len(regs) != 1 {
		t.Fatalf("tightened band did not flag the dip: %v", regs)
	}
}

func TestCompareReportsSkipped(t *testing.T) {
	// One figure per mismatch class: present only in old, only in new,
	// series renamed between the files, and in both but with no
	// overlapping points. Each must come back as one named skip line; a
	// text-only figure (no points on either side) must not.
	oldOnly := fig("dropped-fig", map[int]float64{8: 100})
	newOnly := fig("added-fig", map[int]float64{8: 100})
	oldRenamed := fig("renamed-series", map[int]float64{8: 100})
	newRenamed := fig("renamed-series", map[int]float64{8: 100})
	newRenamed.Series[0].Label = "replay[prio]"
	textOnly := nmad.BenchFigure{ID: "table-51"}
	shared := fig("incast", map[int]float64{8: 100})

	old := []nmad.BenchFigure{oldOnly, oldRenamed, textOnly, shared}
	cur := []nmad.BenchFigure{newOnly, newRenamed, textOnly, shared}
	regs, _, skipped, compared := compare(old, cur, 1.2, figureRules)
	if len(regs) != 0 || compared != 1 {
		t.Fatalf("regressions=%v compared=%d, want none and 1", regs, compared)
	}
	want := []string{
		`figure dropped-fig: only in old file`,
		`figure added-fig: only in new file`,
		`figure renamed-series, series "replay[aggreg]": only in old file`,
		`figure renamed-series, series "replay[prio]": only in new file`,
		`figure renamed-series: in both files but no overlapping points`,
	}
	for _, w := range want {
		found := false
		for _, s := range skipped {
			if s == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing skip line %q in %v", w, skipped)
		}
	}
	if len(skipped) != len(want) {
		t.Errorf("got %d skip lines %v, want exactly %d", len(skipped), skipped, len(want))
	}
	for _, s := range skipped {
		if strings.Contains(s, "table-51") {
			t.Errorf("text-only figure reported as a skip: %s", s)
		}
	}
}
