// Command nmad-trend is the benchmark trend check: it compares two
// BENCH_PR*.json trajectory files (as committed per PR and regenerated
// by CI) and fails if any tracked figure regressed by more than the
// threshold. Most tracked metrics are lower-is-better (latencies,
// completion times, queue high-water marks), but a figure can be
// declared higher-is-better in the built-in table — engine-speed's
// ops/sec must fail the check when it drops, not when it rises.
// Figures without data points (text-only tables like 5.1) and series or
// points present in only one file are skipped, so adding figures never
// breaks the check — but every skip is named in the output (which file
// has the figure or series the other lacks), so a typo'd -fig list or a
// renamed series shows up as a visible "skipped" line instead of a
// silently thinner comparison.
//
// Thresholds are per figure: -threshold sets the global default, and
// figures whose completion times are dominated by retransmission timing
// (the lossy fault figures, where one extra 200µs timeout on the
// critical path dwarfs a 20% band) carry looser built-in defaults.
// The wall-clock engine-speed figure carries a looser band too: it is
// the one tracked metric measured in real seconds, so it inherits the
// noise of the machine running CI. -fig-threshold overrides any
// figure's ratio individually (direction stays as declared).
//
// Usage:
//
//	nmad-trend old.json new.json              # explicit files
//	nmad-trend                                # auto: two highest BENCH_PR<N>.json in .
//	nmad-trend -threshold 1.1 old.json new.json
//	nmad-trend -fig-threshold scale-nodes=2.0,incast=1.1 old.json new.json
//
// Exit status 1 on regression, 2 on usage/parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"nmad"
)

// figRule is a figure's built-in comparison rule: the regression ratio
// and which direction counts as worse.
type figRule struct {
	// Threshold is the worse/better ratio beyond which a point fails:
	// new/old for lower-is-better figures, old/new for higher-is-better
	// ones. Zero means "use the global default".
	Threshold float64
	// HigherIsBetter flips the regression direction: the point fails
	// when the metric drops, not when it grows.
	HigherIsBetter bool
}

// figureRules holds the built-in per-figure rules that differ from the
// global lower-is-better default. The lossy figures replay seeded
// faults, so their numbers are deterministic — but any intentional
// change to retransmit or scheduling behavior shifts which packets are
// dropped, and a single extra timeout on the critical path can double a
// point; the loose band still catches wedges and systematic blowups.
// engine-speed is the one wall-clock metric (ops/sec, higher is
// better): direction is inverted and the band is loosened to absorb CI
// machine noise.
var figureRules = map[string]figRule{
	"scale-nodes":     {Threshold: 2.5},
	"drop-resilience": {Threshold: 2.5},
	"engine-speed":    {Threshold: 2.0, HigherIsBetter: true},
}

func main() {
	threshold := flag.Float64("threshold", 1.2, "fail when the regression ratio exceeds this (1.2 = 20% worse)")
	figOverrides := flag.String("fig-threshold", "", "per-figure ratio overrides, comma-separated id=ratio pairs (e.g. scale-nodes=2.0); direction stays as built in")
	flag.Parse()

	rules := make(map[string]figRule, len(figureRules))
	for id, r := range figureRules {
		rules[id] = r
	}
	if *figOverrides != "" {
		for _, pair := range strings.Split(*figOverrides, ",") {
			id, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			ratio, err := strconv.ParseFloat(val, 64)
			if !ok || err != nil || ratio <= 0 {
				fmt.Fprintf(os.Stderr, "nmad-trend: bad -fig-threshold entry %q (want id=ratio)\n", pair)
				os.Exit(2)
			}
			r := rules[id]
			r.Threshold = ratio
			rules[id] = r
		}
	}

	var oldPath, newPath string
	switch flag.NArg() {
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	case 0:
		var err error
		oldPath, newPath, err = autoDiscover(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-trend: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: nmad-trend [-threshold 1.2] [old.json new.json]")
		os.Exit(2)
	}

	oldFigs, err := loadFigures(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmad-trend: %s: %v\n", oldPath, err)
		os.Exit(2)
	}
	newFigs, err := loadFigures(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmad-trend: %s: %v\n", newPath, err)
		os.Exit(2)
	}

	regressions, figLines, skipped, compared := compare(oldFigs, newFigs, *threshold, rules)
	fmt.Printf("nmad-trend: %s -> %s: %d points compared, %d regressions (default threshold %.0f%%)\n",
		oldPath, newPath, compared, len(regressions), (*threshold-1)*100)
	for _, l := range figLines {
		fmt.Println("  " + l)
	}
	if len(skipped) > 0 {
		fmt.Printf("  %d skipped (old = %s, new = %s):\n", len(skipped), oldPath, newPath)
		for _, l := range skipped {
			fmt.Println("    skipped " + l)
		}
	}
	for _, r := range regressions {
		fmt.Println("  REGRESSION " + r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}

// loadFigures reads a trajectory file holding either one figure object
// or an array of them (nmad-bench -json emits both shapes).
func loadFigures(path string) ([]nmad.BenchFigure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []nmad.BenchFigure
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one nmad.BenchFigure
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("neither a figure nor a figure array: %w", err)
	}
	return []nmad.BenchFigure{one}, nil
}

// compare walks every (figure, series label, x) present in both files
// and reports the points whose metric moved in the figure's worse
// direction beyond its threshold (falling back to the global default).
// Each compared figure gets one summary line naming the threshold and
// direction applied to it, so the log always shows which band a figure
// was held to — the built-in loose bands on the lossy figures and the
// inverted band on engine-speed in particular. Whatever could NOT be
// compared — a figure or series present in only one file, or a figure
// present in both but with no overlapping points — comes back in
// skipped, one line each, so a thinner-than-expected comparison is
// visible instead of silent.
func compare(oldFigs, newFigs []nmad.BenchFigure, defaultThreshold float64, rules map[string]figRule) (regressions, figLines, skipped []string, compared int) {
	oldByID := map[string]nmad.BenchFigure{}
	for _, f := range oldFigs {
		oldByID[f.ID] = f
	}
	newByID := map[string]nmad.BenchFigure{}
	for _, f := range newFigs {
		newByID[f.ID] = f
	}
	for _, of := range oldFigs {
		if _, ok := newByID[of.ID]; !ok {
			skipped = append(skipped, fmt.Sprintf("figure %s: only in old file", of.ID))
		}
	}
	for _, nf := range newFigs {
		of, ok := oldByID[nf.ID]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("figure %s: only in new file", nf.ID))
			continue
		}
		rule, hasRule := rules[nf.ID]
		threshold := rule.Threshold
		source := "per-figure"
		if threshold == 0 {
			threshold = defaultThreshold
			if !hasRule {
				source = "default"
			}
		}
		direction := "lower is better"
		if rule.HigherIsBetter {
			direction = "higher is better"
		}
		oldSeries := map[string]map[int]float64{}
		for _, s := range of.Series {
			pts := map[int]float64{}
			for _, pt := range s.Points {
				pts[pt.X] = pt.Y
			}
			oldSeries[s.Label] = pts
		}
		newLabels := map[string]bool{}
		for _, s := range nf.Series {
			newLabels[s.Label] = true
		}
		for _, s := range of.Series {
			if !newLabels[s.Label] {
				skipped = append(skipped, fmt.Sprintf("figure %s, series %q: only in old file", nf.ID, s.Label))
			}
		}
		figCompared := 0
		for _, s := range nf.Series {
			pts, ok := oldSeries[s.Label]
			if !ok {
				skipped = append(skipped, fmt.Sprintf("figure %s, series %q: only in new file", nf.ID, s.Label))
				continue
			}
			for _, pt := range s.Points {
				oldY, ok := pts[pt.X]
				if !ok || oldY <= 0 {
					continue
				}
				figCompared++
				// The ratio is always "how much worse": for a
				// higher-is-better figure a drop makes old/new grow.
				ratio := pt.Y / oldY
				if rule.HigherIsBetter {
					if pt.Y <= 0 {
						regressions = append(regressions, fmt.Sprintf(
							"figure %s, %s @ x=%d: %.2f -> %.2f (collapsed to zero, %s)",
							nf.ID, s.Label, pt.X, oldY, pt.Y, direction))
						continue
					}
					ratio = oldY / pt.Y
				}
				if ratio > threshold {
					regressions = append(regressions, fmt.Sprintf(
						"figure %s, %s @ x=%d: %.2f -> %.2f (%.0f%% worse, threshold %.0f%%, %s)",
						nf.ID, s.Label, pt.X, oldY, pt.Y, (ratio-1)*100, (threshold-1)*100, direction))
				}
			}
		}
		if figCompared > 0 {
			figLines = append(figLines, fmt.Sprintf(
				"figure %-16s %3d points, threshold %.0f%% (%s, %s)",
				nf.ID, figCompared, (threshold-1)*100, source, direction))
		} else if hasPoints(of) || hasPoints(nf) {
			// Text-only figures (no points on either side) are expected to
			// compare empty; anything else landing here is a mismatch worth
			// naming.
			skipped = append(skipped, fmt.Sprintf("figure %s: in both files but no overlapping points", nf.ID))
		}
		compared += figCompared
	}
	return regressions, figLines, skipped, compared
}

// hasPoints reports whether a figure carries any data points at all —
// false for the text-only table figures.
func hasPoints(f nmad.BenchFigure) bool {
	for _, s := range f.Series {
		if len(s.Points) > 0 {
			return true
		}
	}
	return false
}

// autoDiscover picks the two highest-numbered BENCH_PR<N>.json files in
// dir: the previous trajectory point and the current one.
func autoDiscover(dir string) (oldPath, newPath string, err error) {
	re := regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
	type entry struct {
		n    int
		path string
	}
	var found []entry
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", "", err
	}
	for _, m := range matches {
		sub := re.FindStringSubmatch(filepath.Base(m))
		if sub == nil {
			continue
		}
		n, _ := strconv.Atoi(sub[1])
		found = append(found, entry{n: n, path: m})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("need two BENCH_PR<N>.json files in %s, found %d", dir, len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}
