// Command nmad-sim runs declarative cluster workload scenarios: YAML
// files describing a machine, a timeline of workload phases, mid-run
// events (rail degradation, outages, node slowdowns, credit squeezes)
// and assertions over the outcome.
//
// Usage:
//
//	nmad-sim run scenario.yaml...            # run, print reports
//	nmad-sim run -record out.jsonl s.yaml    # also capture the offered load
//	nmad-sim run -v s.yaml                   # stream phase/event progress
//	nmad-sim validate scenario.yaml...       # parse + validate only
//	nmad-sim list scenarios/                 # one line per scenario in a dir
//
// `run` executes each scenario and prints its report; any assertion
// failure, incomplete phase or engine error makes the exit status 1.
// `validate` classifies every mistake in each file (syntax, schema,
// unknown action, bad target, overlapping phases, assertion on an
// undeclared checkpoint, ...) without running anything. `-record`
// writes the PR-5 record/replay format, stamped with the scenario name
// and fault seed, replayable through nmad-replay (one scenario per
// invocation when recording).
//
// Exit status: 0 all good, 1 scenario failures, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nmad"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "validate":
		os.Exit(cmdValidate(os.Args[2:]))
	case "list":
		os.Exit(cmdList(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nmad-sim <command> [flags] args...

  run [-record out.jsonl] [-v] scenario.yaml...   run scenarios, print reports
  validate scenario.yaml...                       parse and validate only
  list dir                                        one line per scenario in a directory`)
	os.Exit(2)
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	record := fs.String("record", "", "capture the offered load into this JSONL recording (single scenario only)")
	verbose := fs.Bool("v", false, "stream phase/event progress while running")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	if *record != "" && fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "nmad-sim: -record takes exactly one scenario (one recording per run)")
		return 2
	}

	status := 0
	for _, path := range fs.Args() {
		sc, err := nmad.LoadScenario(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-sim: %v\n", err)
			return 2
		}
		cfg := nmad.ScenarioConfig{}
		if *verbose {
			cfg.Verbose = os.Stdout
		}
		var rec *nmad.Recording
		if *record != "" {
			rec = nmad.NewRecording()
			cfg.Record = rec
		}
		rep, err := nmad.RunScenario(sc, cfg)
		if rep != nil {
			rep.Write(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-sim: %v\n", err)
			status = 1
		}
		if rec != nil {
			f, err := os.Create(*record)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nmad-sim: %v\n", err)
				return 2
			}
			werr := rec.Write(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "nmad-sim: writing %s: %v\n", *record, werr)
				return 2
			}
			fmt.Printf("recorded %d operations to %s (scenario %s, seed %s)\n",
				rec.Len(), *record, rec.Meta("scenario"), rec.Meta("seed"))
		}
	}
	return status
}

func cmdValidate(args []string) int {
	if len(args) == 0 {
		usage()
	}
	status := 0
	for _, path := range args {
		if _, err := nmad.LoadScenario(path); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			status = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	return status
}

func cmdList(args []string) int {
	if len(args) != 1 {
		usage()
	}
	scs, bad := nmad.ListScenarioDir(args[0])
	for _, sc := range scs {
		tenants := ""
		if len(sc.Tenants) > 0 {
			tenants = fmt.Sprintf(", %d tenants", len(sc.Tenants))
		}
		fmt.Printf("%-24s %d nodes, %d phases, %d events, %d assertions%s  %s\n",
			sc.Name, sc.Cluster.Nodes, len(sc.Phases), len(sc.Events), len(sc.Assertions), tenants, sc.Description)
	}
	status := 0
	names := make([]string, 0, len(bad))
	for name := range bad {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, bad[name])
		status = 1
	}
	return status
}
