// Command nmad-replay re-drives a recorded offered load (written by
// nmad-trace -record or nmad.WithRecording) through the engine: every
// recorded submission is re-issued at its recorded virtual time, on the
// recorded topology, under the recorded strategy — or under a different
// one, for exact A/B comparisons on identical load.
//
// Usage:
//
//	nmad-replay recording.jsonl                     # replay as recorded
//	nmad-replay -strategy prio recording.jsonl      # one strategy override
//	nmad-replay -ab default,aggreg recording.jsonl  # side-by-side delta table
//	nmad-replay -credits 8 -strategy aggreg recording.jsonl
//
// The -ab table reports, per strategy: completion time, wire bytes,
// physical packet count, wrapper entries, aggregation ratio, and the
// delta of completion time and wire bytes against the first strategy.
//
// Exit status 1 on replay errors, 2 on usage/parse errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nmad"
)

func main() {
	strategy := flag.String("strategy", "",
		"replay under this strategy ("+strings.Join(nmad.Strategies(), "|")+"); empty = as recorded")
	ab := flag.String("ab", "", "comma-separated strategies to A/B: replay the load under each and print a delta table")
	credits := flag.Int("credits", -1, "override the credit budget on every node (-1 = as recorded)")
	grants := flag.Int("grants", -1, "override the rendezvous grant cap on every node (-1 = as recorded)")
	lossless := flag.Bool("lossless", false, "ignore the recorded fault profile and replay on a lossless fabric")
	flag.Parse()

	if flag.NArg() != 1 || (*strategy != "" && *ab != "") {
		fmt.Fprintln(os.Stderr, "usage: nmad-replay [-strategy s | -ab s1,s2,...] [-credits n] [-grants n] [-lossless] recording.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmad-replay: %v\n", err)
		os.Exit(2)
	}
	rec, err := nmad.ReadRecording(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmad-replay: %v\n", err)
		os.Exit(2)
	}
	hdr := rec.Header()
	rails := make([]string, 0, len(hdr.Rails))
	for _, p := range hdr.Rails {
		rails = append(rails, p.Name)
	}
	faults := ""
	if hdr.Faults != nil {
		faults = fmt.Sprintf(", faulty (seed %d)", hdr.Faults.Seed)
	}
	fmt.Printf("recording: %d ops, %d nodes, rails [%s], format v%d%s\n",
		rec.Len(), hdr.Nodes, strings.Join(rails, " "), hdr.Version, faults)

	base := nmad.ReplayConfig{Strategy: *strategy, DisableFaults: *lossless}
	if *credits >= 0 {
		base.Credits = credits
	}
	if *grants >= 0 {
		base.MaxGrants = grants
	}

	var results []*nmad.ReplayResult
	if *ab != "" {
		for _, s := range strings.Split(*ab, ",") {
			cfg := base
			cfg.Strategy = strings.TrimSpace(s)
			res, err := nmad.Replay(rec, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nmad-replay: strategy %s: %v\n", cfg.Strategy, err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	} else {
		res, err := nmad.Replay(rec, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-replay: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}

	fmt.Printf("\n%-10s  %14s  %12s  %8s  %8s  %7s  %7s\n",
		"strategy", "completion", "wire-bytes", "packets", "entries", "aggreg", "errors")
	ref := results[0]
	for i, r := range results {
		delta := ""
		if i > 0 && ref.Completion > 0 {
			delta = fmt.Sprintf("  (time %+.1f%%, wire %+.1f%%)",
				100*(float64(r.Completion)/float64(ref.Completion)-1),
				100*(float64(r.WireBytes())/float64(ref.WireBytes())-1))
		}
		fmt.Printf("%-10s  %14s  %12d  %8d  %8d  %7.2f  %7d%s\n",
			r.Strategy, r.Completion, r.WireBytes(), r.Packets(), r.Entries(),
			r.AggregationRatio(), r.RequestErrors, delta)
	}
}
