// Command nmad-info prints the transfer-layer capability report for every
// built-in network profile: the information the scheduling strategies
// query through the generic driver API (paper §4) — rendezvous threshold,
// gather/scatter capacity, RDMA availability and the nominal performance
// figures of the cost model.
package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"nmad"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "driver\tnetwork\tlatency\tbandwidth\tgather\trdv threshold\trdma\tgap\tsend ovh\trecv ovh")
	for _, prof := range nmad.Profiles() {
		name, caps, err := nmad.ProbeRail(prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-info: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%.0f MB/s\t%d segs\t%d B\t%v\t%v\t%v\t%v\n",
			name, prof.Name, caps.Latency, caps.Bandwidth/1e6,
			caps.MaxSegments, caps.RdvThreshold, caps.RDMA,
			prof.Gap, prof.SendOverhead, prof.RecvOverhead)
	}
	tw.Flush()
	fmt.Println("\nhost: memcpy bandwidth", fmt.Sprintf("%.1f GB/s", nmad.DefaultHost().MemcpyBandwidth/1e9),
		"(2006 dual-core 1.8 GHz Opteron, per the paper's testbed)")
	fmt.Println("strategies:", strings.Join(nmad.Strategies(), " "))
}
