// nmad-vet machine-checks the invariants the repository's tests can
// only witness: determinism of the replayable packages, scenario
// assertion tables covering every engine counter, errors.Is discipline
// around the typed sentinels, and the SPI no-aliasing rule for
// strategies.
//
// Run it through the go command so test files are covered too:
//
//	go build -o nmad-vet ./cmd/nmad-vet
//	go vet -vettool=$PWD/nmad-vet ./...
//
// or standalone over non-test files: nmad-vet ./...
package main

import "nmad/internal/analysis"

func main() {
	analysis.Main(analysis.Analyzers()...)
}
