// Command nmad-trace runs a small multi-flow workload with engine
// tracing enabled and dumps the sender's scheduling timeline — the
// optimization window at work: submissions accumulating while the NIC is
// busy, multi-wrapper elections, rendezvous conversions and piggybacked
// control.
//
// Usage:
//
//	nmad-trace                    # timeline on stdout
//	nmad-trace -chrome out.json   # chrome://tracing / Perfetto export
//	nmad-trace -record out.jsonl  # replayable recording of the offered load
//	nmad-trace -strategy default
//
// A recording written with -record can be re-driven under any strategy,
// credit budget or rail set with nmad-replay.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nmad"
)

func main() {
	strategy := flag.String("strategy", "aggreg",
		"engine strategy ("+strings.Join(nmad.Strategies(), "|")+")")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON file instead of a text timeline")
	record := flag.String("record", "", "write a replayable JSONL recording of the offered load (see nmad-replay)")
	flag.Parse()

	rec := nmad.NewTracer()
	recording := nmad.NewRecording()
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		log.Fatal(err)
	}
	sender, err := cl.Engine(0, nmad.WithStrategy(*strategy), nmad.WithTracer(rec), nmad.WithRecording(recording))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := cl.Engine(1, nmad.WithStrategy(*strategy), nmad.WithRecording(recording))
	if err != nil {
		log.Fatal(err)
	}

	// The workload: a burst of small sends on distinct flows plus one
	// large send (rendezvous), the §5.2/§5.3 patterns in miniature.
	cl.Spawn("sender", func(p *nmad.Proc) {
		g := sender.Gate(1)
		for i := 0; i < 6; i++ {
			g.Isend(p, nmad.Tag(i), make([]byte, 128))
		}
		g.Isend(p, 100, make([]byte, 256<<10))
		for i := 6; i < 10; i++ {
			g.Isend(p, nmad.Tag(i), make([]byte, 128))
		}
	})
	cl.Spawn("receiver", func(p *nmad.Proc) {
		g := receiver.Gate(0)
		var reqs []nmad.Request
		for i := 0; i < 10; i++ {
			reqs = append(reqs, g.Irecv(p, nmad.Tag(i), make([]byte, 128)))
		}
		reqs = append(reqs, g.Irecv(p, 100, make([]byte, 256<<10)))
		if err := nmad.WaitAll(p, reqs...); err != nil {
			log.Fatal(err)
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	wrote := false
	if *record != "" {
		out, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := recording.Write(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d operations to %s (replay with: nmad-replay -ab %s %s)\n",
			recording.Len(), *record, strings.Join(nmad.Strategies(), ","), *record)
		wrote = true
	}
	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := rec.WriteChrome(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", rec.Total(), *chrome)
		wrote = true
	}
	if wrote {
		return
	}
	fmt.Printf("sender timeline, strategy=%s (10 small sends + one 256KB rendezvous):\n\n", *strategy)
	if err := rec.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(rec.Summary())
	st := sender.Stats()
	fmt.Printf("engine: %d wrappers in %d packets (ratio %.2f), %d rendezvous, %d control piggybacks\n",
		st.EntriesSent, st.OutputPackets, st.AggregationRatio(), st.RdvCompleted, st.CtrlPiggybacked)
}
