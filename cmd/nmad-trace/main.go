// Command nmad-trace runs a small multi-flow workload with engine
// tracing enabled and dumps the sender's scheduling timeline — the
// optimization window at work: submissions accumulating while the NIC is
// busy, multi-wrapper elections, rendezvous conversions and piggybacked
// control.
//
// Usage:
//
//	nmad-trace                  # timeline on stdout
//	nmad-trace -chrome out.json # chrome://tracing / Perfetto export
//	nmad-trace -strategy default
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

func main() {
	strategy := flag.String("strategy", "aggreg", "engine strategy (default|aggreg|split|prio)")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON file instead of a text timeline")
	flag.Parse()

	rec := trace.NewRecorder()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.Strategy = *strategy
	opts.Tracer = rec
	sender, err := core.New(f, 0, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := sender.AttachFabric(f); err != nil {
		log.Fatal(err)
	}
	recvOpts := core.DefaultOptions()
	recvOpts.Strategy = *strategy
	receiver, err := core.New(f, 1, recvOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := receiver.AttachFabric(f); err != nil {
		log.Fatal(err)
	}

	// The workload: a burst of small sends on distinct flows plus one
	// large send (rendezvous), the §5.2/§5.3 patterns in miniature.
	w.Spawn("sender", func(p *sim.Proc) {
		g := sender.Gate(1)
		for i := 0; i < 6; i++ {
			g.Isend(p, core.Tag(i), make([]byte, 128))
		}
		g.Isend(p, 100, make([]byte, 256<<10))
		for i := 6; i < 10; i++ {
			g.Isend(p, core.Tag(i), make([]byte, 128))
		}
	})
	w.Spawn("receiver", func(p *sim.Proc) {
		g := receiver.Gate(0)
		var reqs []*core.RecvRequest
		for i := 0; i < 10; i++ {
			reqs = append(reqs, g.Irecv(p, core.Tag(i), make([]byte, 128)))
		}
		reqs = append(reqs, g.Irecv(p, 100, make([]byte, 256<<10)))
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := rec.WriteChrome(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", rec.Total(), *chrome)
		return
	}
	fmt.Printf("sender timeline, strategy=%s (10 small sends + one 256KB rendezvous):\n\n", *strategy)
	if err := rec.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(rec.Summary())
	st := sender.Stats()
	fmt.Printf("engine: %d wrappers in %d packets (ratio %.2f), %d rendezvous, %d control piggybacks\n",
		st.EntriesSent, st.OutputPackets, st.AggregationRatio(), st.RdvCompleted, st.CtrlPiggybacked)
}
