// Command nmad-bench regenerates the figures and tables of the paper's
// evaluation section (§5) plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	nmad-bench -fig 2a            # one figure, aligned table on stdout
//	nmad-bench -fig all           # everything (takes a minute)
//	nmad-bench -fig 4a -format csv
//	nmad-bench -fig 3a -json      # machine-readable, for BENCH_*.json trajectories
//	nmad-bench -list
//
// Every report is stamped with the strategy and engine options each
// MAD-MPI series ran with.
//
// Figure ids: 2a 2b 2c 2d (raw ping-pong), 5.1 (overhead summary),
// 3a 3b 3c 3d (multi-segment ping-pong), 4a 4b (indexed datatype),
// ablation-strategies ablation-multirail ablation-overhead ablation-rdv.
package main

import (
	"flag"
	"fmt"
	"os"

	"nmad"
)

func main() {
	fig := flag.String("fig", "", "figure id to regenerate, or 'all'")
	format := flag.String("format", "table", "output format: table, csv or json")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results (same as -format json)")
	list := flag.Bool("list", false, "list figure ids and exit")
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}

	if *list {
		for _, id := range nmad.BenchFigureIDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = nmad.BenchFigureIDs()
	}
	for _, id := range ids {
		result, err := nmad.BenchRun(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-bench: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			fmt.Println(nmad.BenchFormatTable(result))
		case "csv":
			fmt.Printf("# figure %s: %s\n%s\n", result.ID, result.Title, nmad.BenchFormatCSV(result))
		case "json":
			fmt.Println(nmad.BenchFormatJSON(result))
		default:
			fmt.Fprintf(os.Stderr, "nmad-bench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
