// Command nmad-bench regenerates the figures and tables of the paper's
// evaluation section (§5) plus the ablations listed in DESIGN.md and the
// incast overload workload.
//
// Usage:
//
//	nmad-bench -fig 2a            # one figure, aligned table on stdout
//	nmad-bench -fig all           # everything (takes a minute)
//	nmad-bench -fig 4a -format csv
//	nmad-bench -fig incast,5.1 -json  # machine-readable, for BENCH_*.json trajectories
//	nmad-bench -fig scale-nodes -seed 7   # lossy figures under another fault seed
//	nmad-bench -fig engine-speed -cpuprofile cpu.out -memprofile mem.out
//	nmad-bench -list              # figure ids with one-line descriptions
//	nmad-bench -fig list          # same
//
// Every report is stamped with the strategy and engine options each
// MAD-MPI series ran with; the lossy figures additionally stamp the
// fault-injection seed and profile into each series, and the same seed
// reproduces identical numbers. With -json and more than one figure the
// output is a single JSON array.
//
// Figure ids: 2a 2b 2c 2d (raw ping-pong), 5.1 (overhead summary),
// 3a 3b 3c 3d (multi-segment ping-pong), 4a 4b (indexed datatype),
// incast (N-to-1 overload under credit flow control),
// allreduce (collective schedule engine vs the seed blocking tree),
// replay-ab (trace-driven replay: strategy A/B on the recorded
// composite workload),
// scale-nodes (collectives at 8..1024 emulated nodes, lossless vs 1% drop),
// drop-resilience (16-segment ring exchange vs drop % per strategy),
// ablation-strategies ablation-multirail ablation-overhead ablation-rdv
// ablation-modes ablation-composite ablation-sampling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nmad"
)

func main() {
	fig := flag.String("fig", "", "figure id(s, comma-separated) to regenerate, 'all', or 'list'")
	format := flag.String("format", "table", "output format: table, csv or json")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results (same as -format json)")
	list := flag.Bool("list", false, "list figure ids with descriptions and exit")
	seed := flag.Uint64("seed", nmad.BenchSeed(), "fault-injection seed for the lossy figures (stamped into their series)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected figures to this file")
	memprofile := flag.String("memprofile", "", "write a heap allocation profile to this file after the selected figures")
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	nmad.BenchSetSeed(*seed)
	if *cpuprofile != "" {
		stop, err := nmad.BenchStartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "nmad-bench: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := nmad.BenchWriteMemProfile(*memprofile); err != nil {
				fmt.Fprintf(os.Stderr, "nmad-bench: %v\n", err)
			}
		}()
	}

	if *list || *fig == "list" {
		w := 0
		infos := nmad.BenchFigures()
		for _, info := range infos {
			if len(info.ID) > w {
				w = len(info.ID)
			}
		}
		for _, info := range infos {
			fmt.Printf("%-*s  %s\n", w, info.ID, info.Desc)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = nmad.BenchFigureIDs()
	}
	var jsons []string
	for _, id := range ids {
		result, err := nmad.BenchRun(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmad-bench: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			fmt.Println(nmad.BenchFormatTable(result))
		case "csv":
			fmt.Printf("# figure %s: %s\n%s\n", result.ID, result.Title, nmad.BenchFormatCSV(result))
		case "json":
			jsons = append(jsons, nmad.BenchFormatJSON(result))
		default:
			fmt.Fprintf(os.Stderr, "nmad-bench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *format == "json" {
		// One figure prints bare; several print as a JSON array so a
		// BENCH_*.json trajectory file stays a single valid document.
		if len(jsons) == 1 {
			fmt.Println(jsons[0])
		} else {
			fmt.Printf("[\n%s\n]\n", strings.Join(jsons, ",\n"))
		}
	}
}
