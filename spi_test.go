package nmad_test

// SPI contract tests: strategies written OUTSIDE internal/core, plugged
// in through the facade, cannot break the engine's delivery semantics.
// The adversarial strategy below actively tries — stale picks, duplicated
// picks, forged refs, budget overflows — and the engine's election
// validation must keep every wrapper conserved (nothing lost, nothing
// duplicated) and every flow delivered in per-flow order.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nmad"
	"nmad/sched"
)

// adversary is a randomized, rule-breaking strategy. It always includes
// one genuinely electable wrapper (progress), then salts the election
// with whatever the SPI contract forbids.
type adversary struct {
	rng       *rand.Rand
	stale     []sched.Wrapper // picks from earlier elections, replayed
	elections int
}

func (a *adversary) Name() string { return "adversary" }

func (a *adversary) Elect(w sched.Window, rail sched.RailInfo) *sched.Election {
	var all []sched.Wrapper
	w.Scan(func(pw sched.Wrapper) bool {
		all = append(all, pw)
		return true
	})
	first := -1
	for i, pw := range all {
		if pw.Segments <= rail.Caps.MaxSegments {
			first = i
			break
		}
	}
	if first < 0 {
		return nil // nothing this rail can carry; a wider rail will
	}
	a.elections++
	el := new(sched.Election)
	el.Pick(all[first])
	for i, pw := range all {
		if i == first {
			continue
		}
		switch a.rng.Intn(4) {
		case 0: // legitimate extra pick (may blow the byte budget — allowed)
			el.Pick(pw)
		case 1: // duplicated pick: the engine must send it once
			el.Pick(pw)
			el.Pick(pw)
		}
	}
	if len(a.stale) > 0 && a.rng.Intn(2) == 0 {
		// Stale pick: elected before, possibly long gone from the window.
		el.Pick(a.stale[a.rng.Intn(len(a.stale))])
	}
	if a.rng.Intn(3) == 0 {
		// Forged refs: must be ignored, not crash.
		bogus := all[first]
		bogus.Ref = nil
		el.Pick(bogus)
		forged := all[first]
		forged.Ref = "not a packet"
		el.Pick(forged)
	}
	for _, pw := range el.Wrappers() {
		if len(a.stale) < 64 {
			a.stale = append(a.stale, pw)
		}
	}
	return el
}

// spiRails varies the rail mix per seed: single rail, heterogeneous
// RDMA pair, and an RDMA/non-RDMA pair (TCP drives the eager chunk
// path for rendezvous bodies).
func spiRails(seed int64) []nmad.Profile {
	switch seed % 3 {
	case 0:
		return []nmad.Profile{nmad.MX10G()}
	case 1:
		return []nmad.Profile{nmad.MX10G(), nmad.QsNetII()}
	default:
		return []nmad.Profile{nmad.MX10G(), nmad.TCPGbE()}
	}
}

func TestSPIAdversarialConservationAndOrder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl, err := nmad.NewCluster(2, nmad.WithRails(spiRails(seed)...))
			if err != nil {
				t.Fatal(err)
			}
			// Odd seeds share ONE strategy instance between both engines:
			// its stale cache then leaks wrapper refs across engines,
			// which the election validation must reject.
			adv0 := &adversary{rng: rand.New(rand.NewSource(seed * 7))}
			adv1 := adv0
			if seed%2 == 0 {
				adv1 = &adversary{rng: rand.New(rand.NewSource(seed*7 + 1))}
			}
			e0, err := cl.Engine(0, nmad.WithStrategy(adv0))
			if err != nil {
				t.Fatal(err)
			}
			e1, err := cl.Engine(1, nmad.WithStrategy(adv1))
			if err != nil {
				t.Fatal(err)
			}

			// A randomized schedule over three flows: tiny, eager,
			// near-threshold and rendezvous sizes, some as vector sends.
			type msg struct {
				tag  nmad.Tag
				data []byte
				segs int
			}
			var msgs []msg
			n := 6 + rng.Intn(18)
			for i := 0; i < n; i++ {
				var size int
				switch rng.Intn(4) {
				case 0:
					size = rng.Intn(64)
				case 1:
					size = 64 + rng.Intn(4<<10)
				case 2:
					size = 4<<10 + rng.Intn(28<<10)
				default:
					size = 32<<10 + rng.Intn(128<<10)
				}
				data := make([]byte, size)
				rng.Read(data)
				segs := 1
				if size >= 8 && rng.Intn(3) == 0 {
					segs = 2 + rng.Intn(3)
				}
				msgs = append(msgs, msg{tag: nmad.Tag(rng.Intn(3)), data: data, segs: segs})
			}

			perTag := map[nmad.Tag]int{}
			for _, m := range msgs {
				perTag[m.tag]++
			}
			got := map[nmad.Tag][][]byte{}

			cl.Spawn("send", func(p *nmad.Proc) {
				for _, m := range msgs {
					if m.segs > 1 {
						segs := make([][]byte, m.segs)
						per := len(m.data) / m.segs
						for s := 0; s < m.segs; s++ {
							lo := s * per
							hi := lo + per
							if s == m.segs-1 {
								hi = len(m.data)
							}
							segs[s] = m.data[lo:hi]
						}
						e0.Gate(1).Isendv(p, m.tag, segs)
					} else {
						e0.Gate(1).Isend(p, m.tag, m.data)
					}
				}
			})
			for tag, count := range perTag {
				tag, count := tag, count
				cl.Spawn(fmt.Sprintf("recv-%d", tag), func(p *nmad.Proc) {
					for i := 0; i < count; i++ {
						buf := make([]byte, 200<<10)
						n, err := e1.Gate(0).Recv(p, tag, buf)
						if err != nil {
							t.Errorf("tag %d message %d: %v", tag, i, err)
							return
						}
						got[tag] = append(got[tag], append([]byte(nil), buf[:n]...))
					}
				})
			}
			if err := cl.Run(); err != nil {
				t.Fatalf("run under adversarial strategy: %v", err)
			}

			// Delivery: intact content, per-flow submission order.
			want := map[nmad.Tag][][]byte{}
			for _, m := range msgs {
				want[m.tag] = append(want[m.tag], m.data)
			}
			for tag, ms := range want {
				if len(got[tag]) != len(ms) {
					t.Fatalf("tag %d: delivered %d of %d messages", tag, len(got[tag]), len(ms))
				}
				for i := range ms {
					if !bytes.Equal(got[tag][i], ms[i]) {
						t.Fatalf("tag %d message %d corrupted, reordered or duplicated", tag, i)
					}
				}
			}

			// Conservation: the windows drained, and every submitted
			// wrapper was elected exactly once (Submitted == EntriesSent
			// can only balance if nothing is lost or double-sent).
			for i, e := range []*nmad.Engine{e0, e1} {
				if !e.WindowEmpty() {
					t.Errorf("engine %d: window not drained", i)
				}
				st := e.Stats()
				if st.Submitted != st.EntriesSent {
					t.Errorf("engine %d: %d wrappers submitted, %d elected — conservation violated",
						i, st.Submitted, st.EntriesSent)
				}
			}
			if adv0.elections == 0 {
				t.Error("the adversarial strategy was never consulted")
			}
		})
	}
}

// fifoStrategy is the minimal well-behaved out-of-package strategy: one
// wrapper per packet, strict submission order.
type fifoStrategy struct{}

func (fifoStrategy) Name() string { return "spi-test-fifo" }

func (fifoStrategy) Elect(w sched.Window, rail sched.RailInfo) *sched.Election {
	el := new(sched.Election)
	w.Scan(func(pw sched.Wrapper) bool {
		if pw.Segments > rail.Caps.MaxSegments {
			return true
		}
		el.Pick(pw)
		return false
	})
	if el.Empty() {
		return nil
	}
	return el
}

// Registered once at package init so repeated test runs in one process
// (-count=2) don't trip the duplicate check.
var fifoRegErr = nmad.RegisterStrategy("spi-test-fifo", func() nmad.Strategy { return fifoStrategy{} })

func TestCustomStrategyRegisteredThroughFacade(t *testing.T) {
	if fifoRegErr != nil {
		t.Fatalf("RegisterStrategy: %v", fifoRegErr)
	}
	found := false
	for _, n := range nmad.Strategies() {
		if n == "spi-test-fifo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Strategies() = %v, missing the registered strategy", nmad.Strategies())
	}

	// A multinode ring exchange running entirely on the user strategy.
	const nodes = 4
	cl, err := nmad.NewCluster(nodes, nmad.WithRails(nmad.MX10G(), nmad.QsNetII()))
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*nmad.Engine, nodes)
	for i := range engines {
		if engines[i], err = cl.Engine(i, nmad.WithStrategy("spi-test-fifo")); err != nil {
			t.Fatal(err)
		}
		if engines[i].StrategyName() != "spi-test-fifo" {
			t.Fatalf("engine %d strategy %q", i, engines[i].StrategyName())
		}
	}
	payload := func(from, to int) []byte {
		return bytes.Repeat([]byte{byte(10*from + to)}, 2<<10)
	}
	for i := range engines {
		i := i
		cl.Spawn(fmt.Sprintf("node-%d", i), func(p *nmad.Proc) {
			next, prev := (i+1)%nodes, (i+nodes-1)%nodes
			s := engines[i].Gate(nmad.NodeID(next)).Isend(p, 9, payload(i, next))
			buf := make([]byte, 4<<10)
			n, err := engines[i].Gate(nmad.NodeID(prev)).Recv(p, 9, buf)
			if err != nil {
				t.Errorf("node %d recv: %v", i, err)
				return
			}
			if !bytes.Equal(buf[:n], payload(prev, i)) {
				t.Errorf("node %d: wrong ring payload from %d", i, prev)
			}
			if err := s.Wait(p); err != nil {
				t.Errorf("node %d send: %v", i, err)
			}
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWithStrategyValueAndErrors(t *testing.T) {
	cl, err := nmad.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	// A Strategy value, no registry involved.
	e, err := cl.Engine(0, nmad.WithStrategy(fifoStrategy{}))
	if err != nil {
		t.Fatalf("WithStrategy(value): %v", err)
	}
	if e.StrategyName() != "spi-test-fifo" {
		t.Errorf("StrategyName = %q", e.StrategyName())
	}
	// A chain combinator value through the same path.
	prio, err := sched.New("prio")
	if err != nil {
		t.Fatal(err)
	}
	if e, err = cl.Engine(1, nmad.WithStrategy(nmad.ChainStrategies("combo", fifoStrategy{}, prio))); err != nil {
		t.Fatalf("WithStrategy(chain): %v", err)
	}
	if e.StrategyName() != "combo" {
		t.Errorf("chain StrategyName = %q", e.StrategyName())
	}
	// Errors surface from construction, not panics.
	if _, err := cl.Engine(0, nmad.WithStrategy(42)); err == nil {
		t.Error("WithStrategy(42) must error")
	}
	if _, err := cl.Engine(0, nmad.WithStrategy("no-such-strategy")); err == nil {
		t.Error("unknown strategy name must error")
	}
	if _, err := cl.MPI(0, nmad.WithStrategy(3.14)); err == nil {
		t.Error("MPI must surface option errors too")
	}
	// Duplicate registration reports an error instead of panicking.
	if err := nmad.RegisterStrategy("aggreg", func() nmad.Strategy { return fifoStrategy{} }); err == nil {
		t.Error("duplicate RegisterStrategy must error")
	}
}

func TestAdaptiveStrategyEndToEnd(t *testing.T) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G(), nmad.QsNetII()))
	if err != nil {
		t.Fatal(err)
	}
	e0, err := cl.Engine(0, nmad.WithStrategy("adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Engine(1, nmad.WithStrategy("adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	data := make([]byte, 2<<20)
	for i := range data {
		data[i] = byte(i)
	}
	cl.Spawn("send", func(p *nmad.Proc) {
		for i := 0; i < rounds; i++ {
			if err := e0.Gate(1).Send(p, 1, data); err != nil {
				t.Errorf("round %d: %v", i, err)
			}
		}
	})
	cl.Spawn("recv", func(p *nmad.Proc) {
		buf := make([]byte, len(data))
		for i := 0; i < rounds; i++ {
			if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
		}
		if !bytes.Equal(buf, data) {
			t.Error("adaptive transfer corrupted payload")
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	st := e0.Stats()
	if st.BodyBytes == 0 {
		t.Error("large transfers should have used the rendezvous body path")
	}
	// The warmed sampler must be feeding the strategy a functional figure.
	if e0.SampledBandwidth(0) == 0 && e0.SampledBandwidth(1) == 0 {
		t.Error("no rail sampler warmed up — the adaptive signal is dead")
	}
}
