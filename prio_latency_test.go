package nmad_test

import (
	"testing"

	"nmad"
)

// Property: under sustained mixed-tenant bulk load, a Priority() send's
// submit-to-completion latency stays within a fixed virtual-time bound
// on every built-in strategy. This pins the prio strategy's starvation
// fixes (skip-and-continue, lone oversized departure, capped fallback)
// and the queue tentpole's isolation claim: no strategy may let a
// priority wrapper wait out the whole bulk backlog that keeps arriving
// after it.
func TestPriorityLatencyBoundedAcrossStrategies(t *testing.T) {
	const (
		waves     = 20
		perWave   = 4
		bulkSize  = 4 << 10
		waveGap   = nmad.Time(4_000) // 4µs: 16KB/wave feeds ~3x the wire rate
		submitAt  = 10               // wave after which the priority sends go in
		smallPrio = 64
		// Wire size over the 32K MX aggregation budget, payload under the
		// rendezvous threshold: the shape that used to starve under prio.
		bigPrio = 32<<10 - 16
		// The fixed bound. Strategies without an urgent fast path still
		// satisfy it because bulk arriving after the priority submit can
		// never leapfrog it — only the backlog already ahead (~100KB of
		// wire, ~80µs) must drain. A latency past this bound means the
		// strategy let later bulk starve the priority wrapper; draining
		// the whole 320KB stream first would show up as ~260µs+.
		bound = nmad.Time(150_000)
	)
	for _, strat := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			cl, err := nmad.NewCluster(2)
			if err != nil {
				t.Fatal(err)
			}
			e0, err := cl.Engine(0, nmad.WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			e1, err := cl.Engine(1)
			if err != nil {
				t.Fatal(err)
			}
			type stamped struct {
				name   string
				submit nmad.Time
				req    *nmad.SendRequest
			}
			var prios []*stamped
			cl.Spawn("bulk-feed", func(p *nmad.Proc) {
				var reqs []nmad.Request
				for wv := 0; wv < waves; wv++ {
					for m := 0; m < perWave; m++ {
						tag := nmad.Tag(1 + m%2) // two bulk tenants
						reqs = append(reqs, e0.Gate(1).Isend(p, tag, make([]byte, bulkSize)))
					}
					if wv == submitAt {
						for _, pr := range []struct {
							name string
							size int
							tag  nmad.Tag
						}{{"small", smallPrio, 90}, {"oversized", bigPrio, 91}} {
							s := &stamped{name: pr.name, submit: p.Now()}
							s.req = e0.Gate(1).Isend(p, pr.tag, make([]byte, pr.size), nmad.Priority())
							prios = append(prios, s)
						}
					}
					p.Sleep(waveGap)
				}
				if err := nmad.WaitAll(p, reqs...); err != nil {
					t.Error(err)
				}
			})
			done := map[string]nmad.Time{}
			cl.Spawn("prio-watch", func(p *nmad.Proc) {
				// Let the feeder reach the submit wave first.
				for len(prios) < 2 {
					p.Sleep(waveGap)
				}
				for _, s := range prios {
					if err := s.req.Wait(p); err != nil {
						t.Errorf("%s priority send: %v", s.name, err)
					}
					done[s.name] = p.Now() - s.submit
				}
			})
			cl.Spawn("drain", func(p *nmad.Proc) {
				var reqs []nmad.Request
				for wv := 0; wv < waves; wv++ {
					for m := 0; m < perWave; m++ {
						tag := nmad.Tag(1 + m%2)
						reqs = append(reqs, e1.Gate(0).Irecv(p, tag, make([]byte, bulkSize)))
					}
				}
				reqs = append(reqs,
					e1.Gate(0).Irecv(p, 90, make([]byte, smallPrio)),
					e1.Gate(0).Irecv(p, 91, make([]byte, bigPrio)))
				if err := nmad.WaitAll(p, reqs...); err != nil {
					t.Error(err)
				}
			})
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"small", "oversized"} {
				lat, ok := done[name]
				if !ok {
					t.Fatalf("%s priority send never completed", name)
				}
				t.Logf("%s: %s priority latency %v", strat, name, lat)
				if lat > bound {
					t.Errorf("%s priority send took %v, bound %v: starved behind bulk", name, lat, bound)
				}
			}
		})
	}
}
