package nmad

import (
	"nmad/internal/replay"
	"nmad/internal/trace"
)

// Record/replay surface of the facade: capture a run's offered load once
// (WithRecording), then re-drive it under any strategy, credit budget or
// rail set — exact A/B comparisons on identical submission timing, and
// deterministic golden-timeline regression tests.
//
//	rec := nmad.NewRecording()
//	e, _ := cl.Engine(0, nmad.WithRecording(rec))   // every engine of the cluster
//	... run the workload, then persist: rec.Write(f)
//
//	loaded, _ := nmad.ReadRecording(f)
//	results, _ := nmad.ReplayAB(loaded, []string{"default", "aggreg"})

// Recording is the machine-readable offered load of a run: every
// application-level submission with its virtual-time offset, plus the
// cluster topology to reconstruct the machine. Serialized as versioned
// JSONL (see RecordingVersion).
type Recording = trace.Recording

// RecordedOp is one recorded application-level operation.
type RecordedOp = trace.Op

// RecordingVersion is the current recording format version. Readers
// accept any version up to it; breaking format changes bump it.
const RecordingVersion = trace.RecordingVersion

var (
	// NewRecording creates an empty recording to attach via
	// WithRecording.
	NewRecording = trace.NewRecording
	// ReadRecording parses a JSONL recording written by Recording.Write.
	ReadRecording = trace.ReadRecording
)

// ReplayConfig selects what varies between the recording and the
// replay: strategy, credit budget, grant cap, rail set. The zero value
// replays the recording exactly as recorded.
type ReplayConfig = replay.Config

// ReplayResult is one replayed schedule: completion time, per-node
// engine counters, wire footprint and the per-node event timelines.
type ReplayResult = replay.Result

var (
	// Replay re-drives a recording under one configuration.
	Replay = replay.Run
	// ReplayAB re-drives a recording under several strategies, in order.
	ReplayAB = replay.AB
)
